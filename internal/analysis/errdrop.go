package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer flags statements that silently discard an error
// result: a call used as a bare statement (also under go/defer) whose
// signature returns an error. Deliberate discards must be explicit —
// assign to _ or add a //lint:ignore errdrop comment — so that every
// ignored error in the codebase is visible and auditable.
//
// Infallible-by-documentation writers (strings.Builder, bytes.Buffer)
// and terminal prints to os.Stdout/os.Stderr (fmt.Print*, and fmt.Fprint*
// whose destination is one of the two) are exempt.
//
// HTTP listener calls get the opposite, stricter treatment: the error
// from net/http's ListenAndServe/Serve (package functions or
// *http.Server methods) is how a dead listener announces itself, and a
// `go func() { _ = http.ListenAndServe(...) }()` silently serves
// nothing forever. Discarding such an error — even explicitly with
// `_ =` — is flagged; the only escape is a //lint:ignore errdrop with
// a written justification.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag call statements that discard an error result; discard explicitly with _ = or justify with //lint:ignore errdrop",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			case *ast.AssignStmt:
				// `_ = serve()` is normally the sanctioned explicit
				// discard, but a discarded listener error means a
				// silently dead server — flag it anyway.
				if call = blankAssignedCall(st); call != nil && isListenerCall(pass, call) {
					pass.Reportf(call.Pos(), "http listener error discarded: a dead listener serves nothing silently; surface the error or justify with //lint:ignore errdrop")
				}
				return true
			}
			if call == nil || !returnsError(pass, call) || errDropExempt(pass, call) {
				return true
			}
			if isListenerCall(pass, call) {
				pass.Reportf(call.Pos(), "http listener error discarded: a dead listener serves nothing silently; surface the error or justify with //lint:ignore errdrop")
				return true
			}
			pass.Reportf(call.Pos(), "error result discarded: handle it, assign to _, or justify with //lint:ignore errdrop")
			return true
		})
	}
	return nil
}

// blankAssignedCall returns the called expression of st when every
// left-hand side is the blank identifier and the right-hand side is a
// single call, nil otherwise.
func blankAssignedCall(st *ast.AssignStmt) *ast.CallExpr {
	if len(st.Rhs) != 1 {
		return nil
	}
	for _, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil
		}
	}
	call, _ := st.Rhs[0].(*ast.CallExpr)
	return call
}

// listenerFuncs are the net/http entry points whose returned error is
// the only signal that a listener died.
var listenerFuncs = map[string]bool{
	"ListenAndServe":    true,
	"ListenAndServeTLS": true,
	"Serve":             true,
	"ServeTLS":          true,
}

// isListenerCall reports whether call is one of net/http's serve entry
// points: the package-level functions or the methods on *http.Server.
func isListenerCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !listenerFuncs[sel.Sel.Name] {
		return false
	}
	// Method on net/http.Server.
	if s, ok := pass.Info.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Server"
	}
	// Package-level net/http function.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "net/http"
}

// returnsError reports whether the call (not a type conversion) has at
// least one result of type error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errDropExempt allows calls whose error is infallible or universally
// ignored by convention.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods on infallible writers.
	if s, ok := pass.Info.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
		return false
	}
	// Package-level fmt prints to the process's own terminal streams.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 &&
			(isStdStream(pass, call.Args[0]) || isInfallibleWriter(pass, call.Args[0]))
	}
	return false
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "os" &&
		(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// isInfallibleWriter reports whether e's static type is a writer whose
// Write methods are documented never to fail.
func isInfallibleWriter(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
