package analysis

import (
	"go/ast"
	"go/types"
)

// NoPanicAnalyzer locks in the panics-to-errors migration: library
// packages must report failures as error values, never by unwinding the
// caller or killing the process. panic, log.Fatal*, log.Panic*, and
// os.Exit are banned outside cmd/, examples/, and tests.
var NoPanicAnalyzer = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic, log.Fatal*, log.Panic*, and os.Exit in library packages; failures must be returned as errors",
	Run:  runNoPanic,
}

// fatalCalls maps package path -> function name -> banned.
var fatalCalls = map[string]map[string]bool{
	"log": {
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"os": {"Exit": true},
}

func runNoPanic(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in library code: return an error instead (panics-to-errors discipline)")
				}
			case *ast.SelectorExpr:
				id, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pass.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				path, name := pn.Imported().Path(), fun.Sel.Name
				if fatalCalls[path][name] {
					pass.Reportf(call.Pos(), "%s.%s terminates the process from library code: return an error instead", path, name)
				}
			}
			return true
		})
	}
	return nil
}
