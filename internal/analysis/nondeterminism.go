package analysis

import (
	"go/ast"
	"go/types"
)

// NondeterminismAnalyzer forbids ambient sources of nondeterminism in
// the simulation packages: package-level math/rand functions (which
// draw from the shared global source), wall-clock reads, and
// environment lookups. Randomness must flow through an injected
// *rand.Rand, seeded via internal/rng, so that every sweep is
// reproducible bit-for-bit regardless of host, worker count, or what
// other code ran first.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid ambient randomness (global math/rand), wall-clock reads (time.Now), and environment lookups (os.Getenv) in deterministic simulation packages",
	Run:  runNondeterminism,
}

// ambientBan maps source package path -> banned identifier -> advice.
// For math/rand only the explicit-source constructors are allowed;
// every other package-level function uses the shared global source, so
// they are banned by default via globalRandAllowed below.
var ambientBan = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read: inject timestamps from the caller",
		"Since": "wall-clock read: inject timestamps from the caller",
		"Until": "wall-clock read: inject timestamps from the caller",
	},
	"os": {
		"Getenv":    "environment read makes results host-dependent: plumb configuration explicitly",
		"LookupEnv": "environment read makes results host-dependent: plumb configuration explicitly",
		"Environ":   "environment read makes results host-dependent: plumb configuration explicitly",
	},
}

// globalRandAllowed lists the math/rand (and /v2) identifiers that do
// NOT touch the global source: explicit-source constructors and types.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Rand":       true, // the type, in qualified positions like *rand.Rand
	"Source":     true,
	"Source64":   true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

func runNondeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path, name := pn.Imported().Path(), sel.Sel.Name
			switch path {
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[name] {
					pass.Reportf(sel.Pos(),
						"ambient randomness: %s.%s draws from the shared global source; inject a *rand.Rand derived from internal/rng instead", path, name)
				}
			default:
				if advice, banned := ambientBan[path][name]; banned {
					pass.Reportf(sel.Pos(), "%s.%s: %s", path, name, advice)
				}
			}
			return true
		})
	}
	return nil
}
