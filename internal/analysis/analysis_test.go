package analysis

import "testing"

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//lint:ignore errdrop best-effort cleanup", []string{"errdrop"}, true},
		{"//lint:ignore errdrop,nopanic shared justification", []string{"errdrop", "nopanic"}, true},
		{"//lint:ignore * silence everything here", []string{"*"}, true},
		{"//lint:ignore errdrop", nil, false},         // no reason
		{"//lint:ignore", nil, false},                 // no analyzer, no reason
		{"// lint:ignore errdrop reason", nil, false}, // space breaks the directive
		{"// ordinary comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.text, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseIgnore(%q) = %v, want %v", c.text, names, c.names)
				break
			}
		}
	}
}

func TestInScope(t *testing.T) {
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"nondeterminism", "hybridcap/internal/sim", true},
		{"nondeterminism", "hybridcap/internal/experiments", true},
		{"nondeterminism", "hybridcap/internal/asciiplot", false},
		{"nondeterminism", "hybridcap/internal/rng", false},      // rng wraps math/rand by design
		{"nondeterminism", "hybridcap/internal/obs", true},       // obs must take time from an injected Clock
		{"nondeterminism", "hybridcap/internal/cellcache", true}, // persisted entries must replay identically across hosts
		{"nondeterminism", "hybridcap/internal/cli", false},      // cli constructs the wall clock for injection
		{"nondeterminism", "hybridcap/cmd/capsim", false},
		{"floateq", "hybridcap/internal/capacity", true},
		{"floateq", "hybridcap/internal/scaling", true},
		{"floateq", "hybridcap/internal/measure", true},
		{"floateq", "hybridcap/internal/routing", false},
		{"nopanic", "hybridcap/internal/mobility", true},
		{"nopanic", "hybridcap", true},
		{"nopanic", "hybridcap/cmd/capsim", false},
		{"nopanic", "hybridcap/examples/quickstart", false},
		{"errdrop", "hybridcap/cmd/capsim", true},
		{"errdrop", "hybridcap/internal/flow", true},
		{"maporder", "hybridcap", true},
		{"unknown", "hybridcap/internal/sim", false},
	}
	for _, c := range cases {
		if got := InScope(c.analyzer, c.pkg); got != c.want {
			t.Errorf("InScope(%q, %q) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
