package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer enforces the scratch-arena discipline of the
// slot-loop hot paths (internal/sim, mobility, routing, scheduler,
// spatial): buffers are allocated once per cell and reused, so the
// per-slot inner loops run allocation-free. The allocation churn those
// loops would otherwise accumulate is the allocs_per_cell axis of
// BENCH_sweep.json; this analyzer turns that trajectory metric into a
// compile-time invariant.
//
// A loop is "hot" when it is part of a loop nest of depth >= 2 — the
// shape of every per-slot simulation loop (slot loop around per-node /
// per-pair / per-BS loops). Flat single loops (per-cell setup, queue
// scans) are exempt, which is the heuristic that keeps one-time setup
// allocations out of scope. Inside a hot loop the analyzer flags
//
//   - make, new, &composite and slice/map composite literals: a fresh
//     heap object every iteration;
//   - append whose result does not reuse its first argument's backing,
//     and append growing a slice that was freshly declared inside the
//     nest (a reslice-initialized local like `rest := q[:0]` is the
//     recognized in-place compaction idiom and stays clean);
//   - function literals: the closure (and its captured variables)
//     allocates per iteration;
//   - interface boxing: conversions to interface types, string<->byte
//     slice conversions, and concrete arguments passed to non-variadic
//     interface parameters (variadic ...any sinks are error paths and
//     stay exempt).
//
// The scratch-arena idiom — a preallocated buffer threaded in via
// receiver, parameter or outer-scope variable and grown with
// self-append — is recognized as clean.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-iteration heap allocations (make/new/append-growth/closures/interface boxing) inside slot-loop hot paths; preallocate and reuse scratch buffers instead",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	forEachFuncScope(pass.Files, func(body *ast.BlockStmt) {
		checkHotScope(pass, body)
	})
	return nil
}

// forEachFuncScope calls fn once per function scope: every FuncDecl
// body and every function-literal body, each analyzed independently (a
// loop does not extend into the closures it creates — they run on their
// own schedule).
func forEachFuncScope(files []*ast.File, fn func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}

// checkHotScope analyzes one function scope: finds its hot loops and
// flags per-iteration allocations inside them.
func checkHotScope(pass *Pass, body *ast.BlockStmt) {
	nested := nestedLoops(body)
	declInit := collectDeclInits(pass, body)

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if loops := enclosingLoopBodies(stack, lit.Pos()); isHot(loops, nested) {
				pass.Reportf(lit.Pos(), "hot-loop closure: the function literal (and every captured variable) allocates per iteration; hoist it out of the loop or justify with //lint:ignore hotalloc")
			}
			// The literal's own body is a separate scope; do not descend.
			return false
		}
		if loops := enclosingLoopBodies(stack, n.Pos()); isHot(loops, nested) {
			checkHotNode(pass, n, stack, loops, declInit)
		}
		stack = append(stack, n)
		return true
	})
}

// nestedLoops records, for every loop statement in the scope, whether
// its body contains another loop (closure bodies excluded: a loop nest
// does not extend into the function literals it creates).
func nestedLoops(body *ast.BlockStmt) map[ast.Stmt]bool {
	nested := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if !isLoop(n) {
			return true
		}
		outer := n.(ast.Stmt)
		ast.Inspect(loopBody(outer), func(m ast.Node) bool {
			if m == nil {
				return true
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if isLoop(m) {
				nested[outer] = true
				return false
			}
			return true
		})
		return true
	})
	return nested
}

func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch l := s.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// enclosingLoopBodies returns the loops on the stack whose body spans
// pos, outermost first. Positions in a loop's init/cond/post or range
// expression evaluate once per loop, not per iteration, and are
// excluded.
func enclosingLoopBodies(stack []ast.Node, pos token.Pos) []ast.Stmt {
	var loops []ast.Stmt
	for _, n := range stack {
		if !isLoop(n) {
			continue
		}
		s := n.(ast.Stmt)
		if b := loopBody(s); b != nil && b.Pos() <= pos && pos < b.End() {
			loops = append(loops, s)
		}
	}
	return loops
}

// isHot reports whether an allocation under the given loop chain sits
// in a loop nest of depth >= 2: two or more enclosing loops, or a
// single enclosing loop that itself contains another loop.
func isHot(loops []ast.Stmt, nested map[ast.Stmt]bool) bool {
	if len(loops) >= 2 {
		return true
	}
	return len(loops) == 1 && nested[loops[0]]
}

// collectDeclInits maps every object declared in the scope to its
// initializer expression, so append targets can be classified as fresh
// slices versus reslice-initialized scratch.
func collectDeclInits(pass *Pass, body *ast.BlockStmt) map[types.Object]ast.Expr {
	inits := make(map[types.Object]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					continue
				}
				if len(d.Rhs) == len(d.Lhs) {
					inits[obj] = d.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, id := range d.Names {
				obj := pass.Info.Defs[id]
				if obj == nil {
					continue
				}
				if i < len(d.Values) {
					inits[obj] = d.Values[i]
				}
			}
		}
		return true
	})
	return inits
}

// checkHotNode flags one node inside a hot loop if it allocates.
func checkHotNode(pass *Pass, n ast.Node, stack []ast.Node, loops []ast.Stmt, declInit map[types.Object]ast.Expr) {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	switch e := n.(type) {
	case *ast.CallExpr:
		checkHotCall(pass, e, parent, loops, declInit)
	case *ast.CompositeLit:
		// &T{...} is reported at the UnaryExpr; avoid a duplicate here.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			return
		}
		if t := pass.TypeOf(e); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(e.Pos(), "hot-loop allocation: %s literal allocates fresh backing every iteration; hoist and reuse a scratch buffer or justify with //lint:ignore hotalloc", kindOf(t))
			}
		}
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				pass.Reportf(e.Pos(), "hot-loop allocation: &composite literal escapes to the heap every iteration; reuse a preallocated value or justify with //lint:ignore hotalloc")
			}
		}
	}
}

func kindOf(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkHotCall classifies a call expression inside a hot loop: builtin
// allocators, allocating conversions, and interface boxing at the call
// site.
func checkHotCall(pass *Pass, call *ast.CallExpr, parent ast.Node, loops []ast.Stmt, declInit map[types.Object]ast.Expr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot-loop allocation: make allocates every iteration; hoist the buffer out of the loop and reuse it (scratch-arena idiom) or justify with //lint:ignore hotalloc")
			case "new":
				pass.Reportf(call.Pos(), "hot-loop allocation: new allocates every iteration; hoist the value out of the loop or justify with //lint:ignore hotalloc")
			case "append":
				checkHotAppend(pass, call, parent, loops, declInit)
			}
			return
		}
	}
	// Conversions: T(x) with T an interface boxes; string<->[]byte/[]rune
	// copies.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		if types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()) {
			pass.Reportf(call.Pos(), "hot-loop allocation: conversion to interface type %s boxes its operand every iteration; keep the concrete type in the loop or justify with //lint:ignore hotalloc", dst)
			return
		}
		if isStringBytesConversion(dst, src) {
			pass.Reportf(call.Pos(), "hot-loop allocation: %s(...) copies its operand every iteration; hoist the conversion or reuse a buffer, or justify with //lint:ignore hotalloc", dst)
		}
		return
	}
	// Interface boxing at the call site: a concrete argument bound to a
	// non-variadic interface parameter allocates. The variadic tail
	// (...any sinks like fmt.Errorf) is exempt: those are error paths.
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n--
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		if !types.IsInterface(params.At(i).Type().Underlying()) {
			continue
		}
		arg := call.Args[i]
		if _, isLit := arg.(*ast.FuncLit); isLit {
			continue // reported as a closure allocation already
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "hot-loop allocation: concrete %s boxed into interface parameter %q every iteration; hoist the interface value or justify with //lint:ignore hotalloc", at, params.At(i).Name())
	}
}

func isStringBytesConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32)
}

// checkHotAppend distinguishes the clean self-append scratch idiom from
// per-iteration slice growth. Clean: `x = append(x, ...)` where x (or
// the root of x's selector/index chain) is declared outside the loop
// nest, or is a local initialized from a reslice (`rest := q[:0]`, the
// in-place compaction idiom). Flagged: append whose result lands
// somewhere other than its first argument, and growth of a slice that
// is freshly created on every iteration.
func checkHotAppend(pass *Pass, call *ast.CallExpr, parent ast.Node, loops []ast.Stmt, declInit map[types.Object]ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	assign, ok := parent.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != ast.Expr(call) {
		pass.Reportf(call.Pos(), "hot-loop allocation: append result does not overwrite its argument; the grown backing cannot be reused next iteration (assign x = append(x, ...)) or justify with //lint:ignore hotalloc")
		return
	}
	if types.ExprString(assign.Lhs[0]) != types.ExprString(call.Args[0]) {
		pass.Reportf(call.Pos(), "hot-loop allocation: append into a different destination than its source (%s = append(%s, ...)) abandons the destination's backing every iteration; append to self or justify with //lint:ignore hotalloc",
			types.ExprString(assign.Lhs[0]), types.ExprString(call.Args[0]))
		return
	}
	root := rootIdent(assign.Lhs[0])
	if root == nil {
		return // compound target rooted outside a simple identifier: treat as outer scratch
	}
	obj := pass.Info.ObjectOf(root)
	if obj == nil || len(loops) == 0 {
		return
	}
	outer := loops[0]
	if obj.Pos() < outer.Pos() || obj.Pos() >= outer.End() {
		return // declared outside the nest: reused scratch, capacity survives iterations
	}
	if init, ok := declInit[obj]; ok {
		if _, resliced := init.(*ast.SliceExpr); resliced {
			return // rest := q[:0] — in-place compaction reusing q's backing
		}
	}
	pass.Reportf(call.Pos(), "hot-loop allocation: %s is declared inside the loop nest, so append grows a fresh slice every iteration; declare the buffer before the loop and reuse it or justify with //lint:ignore hotalloc", root.Name)
}

// rootIdent unwraps selector/index/paren/star chains to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
