package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer[,analyzer...]|*> <reason>
//
// The directive covers diagnostics on its own line (trailing comment)
// and on the line directly below it (comment above the statement). A
// directive without a reason is inert, so every suppression carries an
// auditable justification.
const ignoreDirective = "//lint:ignore"

// suppression records which analyzers are silenced on a (file, line).
type suppression struct {
	analyzers map[string]bool // nil means none; "*" key silences all
}

func (s suppression) covers(analyzer string) bool {
	if s.analyzers == nil {
		return false
	}
	if s.analyzers[analyzer] {
		return true
	}
	// A wildcard silences every analyzer except staleignore, whose
	// findings are about the directives themselves: a stale wildcard
	// directive must not be able to suppress its own report.
	return s.analyzers["*"] && analyzer != "staleignore"
}

// suppressionIndex maps filename -> line -> suppression.
type suppressionIndex map[string]map[int]suppression

// directive is one well-formed //lint:ignore comment, resolved to its
// position. Each directive covers diagnostics on its own line and the
// line directly below it.
type directive struct {
	pos   token.Position
	start token.Pos
	names []string
}

// covers reports whether the directive silences the named analyzer on
// the given file line.
func (d directive) covers(analyzer, filename string, line int) bool {
	if filename != d.pos.Filename || (line != d.pos.Line && line != d.pos.Line+1) {
		return false
	}
	for _, n := range d.names {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}

// collectDirectives scans every comment in the files for well-formed
// ignore directives, in file order.
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var dirs []directive
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				dirs = append(dirs, directive{
					pos:   fset.Position(c.Pos()),
					start: c.Pos(),
					names: names,
				})
			}
		}
	}
	return dirs
}

// buildSuppressionIndex indexes the package's ignore directives by the
// (file, line) pairs they cover.
func buildSuppressionIndex(pkg *Package) suppressionIndex {
	idx := make(suppressionIndex)
	for _, d := range collectDirectives(pkg.Fset, pkg.Files) {
		lines := idx[d.pos.Filename]
		if lines == nil {
			lines = make(map[int]suppression)
			idx[d.pos.Filename] = lines
		}
		for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
			s := lines[line]
			if s.analyzers == nil {
				s.analyzers = make(map[string]bool)
			}
			for _, n := range d.names {
				s.analyzers[n] = true
			}
			lines[line] = s
		}
	}
	return idx
}

// parseIgnore extracts the analyzer names from an ignore directive.
// It returns ok=false for comments that are not directives or that are
// malformed (no analyzer list, or no reason after it).
func parseIgnore(text string) (names []string, ok bool) {
	rest, found := strings.CutPrefix(text, ignoreDirective)
	if !found {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // need an analyzer list and a reason
		return nil, false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// filterSuppressed drops diagnostics covered by an ignore directive.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	idx := buildSuppressionIndex(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if idx[d.Pos.Filename][d.Pos.Line].covers(d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
