package analysis

import (
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore <analyzer[,analyzer...]|*> <reason>
//
// The directive covers diagnostics on its own line (trailing comment)
// and on the line directly below it (comment above the statement). A
// directive without a reason is inert, so every suppression carries an
// auditable justification.
const ignoreDirective = "//lint:ignore"

// suppression records which analyzers are silenced on a (file, line).
type suppression struct {
	analyzers map[string]bool // nil means none; "*" key silences all
}

func (s suppression) covers(analyzer string) bool {
	return s.analyzers != nil && (s.analyzers["*"] || s.analyzers[analyzer])
}

// suppressionIndex maps filename -> line -> suppression.
type suppressionIndex map[string]map[int]suppression

// buildSuppressionIndex scans every comment in the package for ignore
// directives.
func buildSuppressionIndex(pkg *Package) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range pkg.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]suppression)
					idx[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					s := lines[line]
					if s.analyzers == nil {
						s.analyzers = make(map[string]bool)
					}
					for _, n := range names {
						s.analyzers[n] = true
					}
					lines[line] = s
				}
			}
		}
	}
	return idx
}

// parseIgnore extracts the analyzer names from an ignore directive.
// It returns ok=false for comments that are not directives or that are
// malformed (no analyzer list, or no reason after it).
func parseIgnore(text string) (names []string, ok bool) {
	rest, found := strings.CutPrefix(text, ignoreDirective)
	if !found {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // need an analyzer list and a reason
		return nil, false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// filterSuppressed drops diagnostics covered by an ignore directive.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	idx := buildSuppressionIndex(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if idx[d.Pos.Filename][d.Pos.Line].covers(d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
