package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one fully type-checked compilation unit ready for
// analysis. Only non-test files are loaded: the suite's invariants
// exempt _test.go files by design (tests may panic, read clocks, and
// drop errors), so they are never part of a Pass.
type Package struct {
	Path  string // import path
	Dir   string // on-disk directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into
// type-checked Packages. It shells out to `go list -export -deps` so
// every dependency — standard library included — is imported from
// compiler export data instead of being re-type-checked from source;
// the returned packages are exactly the ones matching the patterns, in
// `go list` order (deterministic: lexical by import path).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*listedPackage, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		m, ok := byPath[path]
		if !ok || m.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(m.Export)
	})

	var pkgs []*Package
	for _, m := range metas {
		if m.DepOnly || m.Standard {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("load %s: %s", m.ImportPath, m.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var metas []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		m := new(listedPackage)
		if err := dec.Decode(m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, m *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(m.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", m.ImportPath, err)
	}
	return &Package{
		Path:  m.ImportPath,
		Dir:   m.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
