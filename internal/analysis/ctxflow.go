package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the cancellation-threading discipline the
// scenario service depends on: a canceled run must stop promptly at
// every layer, which only holds if the context actually flows from the
// HTTP handler down to the engine's cell scheduler. Concretely:
//
//   - context.Background() and context.TODO() are forbidden outside
//     cmd/, examples/ and tests: library code receives its context from
//     the caller. A function that already has a ctx parameter and still
//     starts a fresh Background severs the caller's cancellation —
//     that is the regression this analyzer exists to prevent;
//   - a nil literal must never be passed where a context.Context is
//     expected: pass the caller's ctx (the callee cannot distinguish
//     "forgot" from "never cancels");
//   - a goroutine spawned in a context-carrying function must not block
//     forever on a channel send after its consumer is gone: every send
//     needs a select with a ctx.Done()-shaped arm (a receive from a
//     Done() call or a <-chan struct{}), so shutdown can always reach
//     the worker. This is the flow-sensitive sharpening of goroleak's
//     any-select rule.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "thread context.Context through every layer: no context.Background/TODO outside cmd and tests, no nil contexts, and ctx.Done() select arms on goroutine sends in context-carrying functions",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkCtxScope(pass, fd.Body, funcTypeHasCtx(pass, fd.Type))
		}
	}
	return nil
}

// walkCtxScope checks one function scope; hasCtx reports whether a
// context.Context is in scope (a parameter of this function or of an
// enclosing one, for literals).
func walkCtxScope(pass *Pass, body *ast.BlockStmt, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			walkCtxScope(pass, e.Body, hasCtx || funcTypeHasCtx(pass, e.Type))
			return false
		case *ast.GoStmt:
			if lit, ok := e.Call.Fun.(*ast.FuncLit); ok && hasCtx {
				checkGoroutineSends(pass, lit)
			}
			// Fall through to visit the call and (via FuncLit above) the
			// spawned body for Background/nil findings too.
		case *ast.CallExpr:
			checkCtxCall(pass, e, hasCtx)
		}
		return true
	})
}

// funcTypeHasCtx reports whether ft declares a context.Context
// parameter.
func funcTypeHasCtx(pass *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCtxCall flags fresh root contexts and nil contexts at one call
// site.
func checkCtxCall(pass *Pass, call *ast.CallExpr, hasCtx bool) {
	if name, ok := contextRootCall(pass, call); ok {
		if hasCtx {
			pass.Reportf(call.Pos(), "context.%s severs the caller's cancellation: this function already receives a ctx — thread it (derive with context.WithCancel/WithTimeout/WithoutCancel) or justify with //lint:ignore ctxflow", name)
		} else {
			pass.Reportf(call.Pos(), "context.%s outside cmd/ and tests: library code must receive its context from the caller so cancellation reaches every layer; accept a ctx parameter or justify with //lint:ignore ctxflow", name)
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n--
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		if !isCtxType(params.At(i).Type()) {
			continue
		}
		if id, ok := call.Args[i].(*ast.Ident); ok && id.Name == "nil" {
			if t := pass.TypeOf(call.Args[i]); t != nil {
				if b, isBasic := t.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
					pass.Reportf(call.Args[i].Pos(), "nil passed as context.Context: the callee cannot tell a forgotten context from a never-canceling one; pass the caller's ctx or justify with //lint:ignore ctxflow")
				}
			}
		}
	}
}

// contextRootCall recognizes context.Background() / context.TODO().
func contextRootCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	if name := sel.Sel.Name; name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// checkGoroutineSends walks a spawned goroutine's body: every channel
// send must sit in a select that also has a ctx.Done()-shaped arm, or
// shutdown can strand the worker blocked on a consumer that already
// returned. Nested go statements are skipped; they are checked as their
// own goroutines.
func checkGoroutineSends(pass *Pass, lit *ast.FuncLit) {
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if send, ok := n.(*ast.SendStmt); ok {
			sel := enclosingSelect(stack)
			switch {
			case sel == nil:
				pass.Reportf(send.Pos(), "blocking send in a goroutine spawned from a context-carrying function: once the consumer stops, shutdown cannot reach this worker; guard the send with a select that has a ctx.Done() arm or justify with //lint:ignore ctxflow")
			case !hasDoneArm(pass, sel):
				pass.Reportf(send.Pos(), "select around this goroutine send has no ctx.Done() arm: cancellation cannot unblock the worker; add a case <-ctx.Done() or justify with //lint:ignore ctxflow")
			}
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingSelect returns the innermost select on the stack, or nil.
func enclosingSelect(stack []ast.Node) *ast.SelectStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return sel
		}
	}
	return nil
}

// hasDoneArm reports whether the select has a receive arm wired to a
// cancellation signal: a receive from a Done() call, or from any
// expression of type <-chan struct{} (the shape ctx.Done() returns and
// done-channel idioms share).
func hasDoneArm(pass *Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch c := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				recv = c.Rhs[0]
			}
		}
		u, ok := recv.(*ast.UnaryExpr)
		if !ok || u.Op.String() != "<-" {
			continue
		}
		if isDoneChannel(pass, u.X) {
			return true
		}
	}
	return false
}

// isDoneChannel recognizes ctx.Done()-shaped channels: a call to a
// method named Done, or an expression whose type is a receive-only
// channel of empty struct.
func isDoneChannel(pass *Pass, ch ast.Expr) bool {
	if call, ok := ch.(*ast.CallExpr); ok {
		if s, ok := call.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
			return true
		}
	}
	t := pass.TypeOf(ch)
	if t == nil {
		return false
	}
	c, ok := t.Underlying().(*types.Chan)
	if !ok || c.Dir() != types.RecvOnly {
		return false
	}
	st, ok := c.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
