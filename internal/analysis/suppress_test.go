package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// parseFixture type-checks an import-free source string into a Package,
// so suppression semantics can be tested without touching disk.
func parseFixture(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	tpkg, err := conf.Check("example.com/fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check fixture: %v", err)
	}
	return &Package{
		Path:  "example.com/fixture",
		Fset:  fset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	}
}

// TestParseIgnoreMandatoryReason pins the directive grammar: an
// analyzer list AND a reason are both required, or the comment
// suppresses nothing.
func TestParseIgnoreMandatoryReason(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//lint:ignore nopanic justified because testdata", []string{"nopanic"}, true},
		{"//lint:ignore nopanic,errdrop shared justification", []string{"nopanic", "errdrop"}, true},
		{"//lint:ignore * blanket justification", []string{"*"}, true},
		{"//lint:ignore nopanic", nil, false},         // no reason: inert
		{"//lint:ignore", nil, false},                 // bare directive: inert
		{"// lint:ignore nopanic reason", nil, false}, // space breaks the prefix
		{"// ordinary comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok=%v, want %v", c.text, ok, c.ok)
			continue
		}
		if ok && !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.text, names, c.names)
		}
	}
}

// TestSuppressionNameMatching checks that a directive only silences the
// analyzers it names: same-name and wildcard suppress, a wrong name
// does not, and a reason-less directive is inert.
func TestSuppressionNameMatching(t *testing.T) {
	pkg := parseFixture(t, `package fixture

func rightName() {
	//lint:ignore nopanic fixture demonstrating a matching suppression
	panic("a")
}

func wrongName() {
	//lint:ignore errdrop fixture directive naming a different analyzer
	panic("b")
}

func wildcard() {
	//lint:ignore * fixture demonstrating a wildcard suppression
	panic("c")
}

func noReason() {
	//lint:ignore nopanic
	panic("d")
}
`)
	diags, err := RunAnalyzer(NoPanicAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// Surviving findings: wrongName's panic (line 10) and noReason's
	// panic (line 20). rightName and wildcard are suppressed.
	if want := []int{10, 20}; !reflect.DeepEqual(lines, want) {
		t.Errorf("surviving findings at lines %v, want %v\n%v", lines, want, diags)
	}
}

// TestWildcardDoesNotSuppressStaleignore pins the one exception to
// wildcard matching: staleignore findings are about directives
// themselves, so a stale "*" directive cannot silence its own report.
func TestWildcardDoesNotSuppressStaleignore(t *testing.T) {
	pkg := parseFixture(t, `package fixture

func f() int {
	//lint:ignore * fixture wildcard with nothing left to silence
	return 1
}
`)
	pos := token.Position{Filename: pkg.Fset.Position(pkg.Files[0].Pos()).Filename, Line: 4}
	diags := filterSuppressed(pkg, []Diagnostic{
		{Pos: pos, Analyzer: "staleignore", Message: "stale directive"},
		{Pos: pos, Analyzer: "nopanic", Message: "would be suppressed"},
	})
	if len(diags) != 1 || diags[0].Analyzer != "staleignore" {
		t.Errorf("wildcard must suppress nopanic but not staleignore, got %v", diags)
	}
}

// TestStaleIgnoreConsumedVsStale runs the staleignore analyzer over a
// fixture with one live and one leftover directive: only the leftover
// is reported, at the directive itself.
func TestStaleIgnoreConsumedVsStale(t *testing.T) {
	pkg := parseFixture(t, `package fixture

func consumed() {
	//lint:ignore nopanic fixture panic kept deliberately
	panic("x")
}

func stale() int {
	//lint:ignore nopanic the panic this silenced was removed long ago
	return 1
}
`)
	diags, err := RunAnalyzer(StaleIgnoreAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d staleignore findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Pos.Line != 9 {
		t.Errorf("stale finding at line %d, want 9 (the leftover directive)", d.Pos.Line)
	}
	if !strings.Contains(d.Message, "stale //lint:ignore nopanic") {
		t.Errorf("unexpected message: %s", d.Message)
	}
}

// TestStaleIgnoreUnknownAnalyzer checks that a directive naming an
// analyzer outside the suite is reported even when another named
// analyzer keeps it consumed.
func TestStaleIgnoreUnknownAnalyzer(t *testing.T) {
	pkg := parseFixture(t, `package fixture

func f() {
	//lint:ignore nopanic,nosuchcheck fixture with one typoed name
	panic("x")
}
`)
	diags, err := RunAnalyzer(StaleIgnoreAnalyzer, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "nosuchcheck"`) {
		t.Errorf("want one unknown-analyzer finding, got %v", diags)
	}
}
