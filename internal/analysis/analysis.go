// Package analysis is a stdlib-only static-analysis framework plus the
// hybridlint analyzer suite that proves project invariants — determinism,
// error discipline, map-order safety, float-comparison hygiene — at
// compile time rather than hoping a particular seed exposes a violation
// at runtime.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata packages with "// want" comments)
// but is implemented on go/ast + go/types only, so the module stays
// dependency-free. Packages are loaded with export data produced by
// `go list -export` (see Load), which keeps type-checking exact without
// re-checking the standard library from source.
//
// Diagnostics can be suppressed with a staticcheck-style comment on the
// same line or the line directly above the finding:
//
//	//lint:ignore <analyzer> <reason>
//
// The analyzer name may be a comma-separated list or "*"; the reason is
// mandatory — a bare //lint:ignore suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Reportf; it returns an error only for internal failures, never
// for findings.
type Analyzer struct {
	Name string // short lowercase identifier used in diagnostics and //lint:ignore
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass) error
}

// A Diagnostic is one finding, already resolved to a concrete position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Analyzers is the hybridlint suite in stable report order. The first
// six are the syntactic tier (PRs 3–4); hotalloc, ctxflow, cachekey and
// staleignore are the flow-sensitive tier.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		MapOrderAnalyzer,
		NoPanicAnalyzer,
		FloatEqAnalyzer,
		ErrDropAnalyzer,
		GoroLeakAnalyzer,
		HotAllocAnalyzer,
		CtxFlowAnalyzer,
		CacheKeyAnalyzer,
		StaleIgnoreAnalyzer,
	}
}

// ByName returns the suite analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer applies a to pkg and returns the findings that survive
// //lint:ignore suppression, sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	diags := filterSuppressed(pkg, pass.diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}
