package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakAnalyzer enforces the worker-pool discipline the engine
// package is built on: every spawned goroutine must be joined before
// its owner returns, and nothing a goroutine does may strand the join.
// Concretely, for sync.WaitGroup-managed goroutines it requires
//
//   - Add before the go statement, never inside the spawned goroutine
//     (an Add racing Wait can let Wait return early);
//   - Done via defer, so a panicking worker still signals the group;
//   - Wait in the same function that Adds to a function-local group,
//     so workers cannot outlive the pool owner;
//
// and it flags channel sends inside spawned goroutines that are not
// guarded by a select, because a send after the consumer has stopped
// blocks the worker forever and leaks it.
var GoroLeakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "enforce WaitGroup Add/Done/Wait pairing and select-guarded channel sends in spawned goroutines",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(pass, fd.Body)
		}
	}
	return nil
}

// checkGoroutines analyzes one function body: the goroutines it spawns
// via `go func() {...}()` and the Add/Wait bookkeeping around them.
func checkGoroutines(pass *Pass, body *ast.BlockStmt) {
	var goLits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goLits = append(goLits, lit)
			}
		}
		return true
	})
	for _, lit := range goLits {
		checkSpawnedBody(pass, lit)
	}

	inGoroutine := func(pos token.Pos) bool {
		for _, lit := range goLits {
			if lit.Pos() <= pos && pos < lit.End() {
				return true
			}
		}
		return false
	}

	// Pair Add with Wait per function-local WaitGroup. Groups received
	// from elsewhere (parameters, fields) may legitimately be waited on
	// by their owner, so only variables declared in this body count.
	adds := make(map[types.Object][]token.Pos)
	waited := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, obj := waitGroupCall(pass, call)
		if obj == nil || obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
			return true
		}
		switch name {
		case "Wait":
			waited[obj] = true
		case "Add":
			if !inGoroutine(call.Pos()) {
				adds[obj] = append(adds[obj], call.Pos())
			}
		}
		return true
	})
	for obj, positions := range adds {
		if waited[obj] {
			continue
		}
		for _, pos := range positions {
			pass.Reportf(pos, "sync.WaitGroup.Add on %s without a matching Wait in the same function: spawned workers can outlive the pool owner", obj.Name())
		}
	}
}

// checkSpawnedBody walks the body of one go-statement function literal.
// A nested go statement's literal is skipped here: the collection pass
// records it separately and it is checked as its own goroutine.
func checkSpawnedBody(pass *Pass, lit *ast.FuncLit) {
	var stack []ast.Node
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.CallExpr:
			switch name, _ := waitGroupCall(pass, s); name {
			case "Add":
				pass.Reportf(s.Pos(), "sync.WaitGroup.Add inside the spawned goroutine races with Wait: call Add before the go statement")
			case "Done":
				if !hasAncestor[*ast.DeferStmt](stack[:len(stack)-1]) {
					pass.Reportf(s.Pos(), "sync.WaitGroup.Done is not deferred in the spawned goroutine: a panic before it strands Wait")
				}
			}
		case *ast.SendStmt:
			if !hasAncestor[*ast.SelectStmt](stack[:len(stack)-1]) {
				pass.Reportf(s.Pos(), "unguarded channel send in a spawned goroutine: after the consumer stops, the send blocks forever and leaks the worker; guard it with a select (or suppress with justification)")
			}
		}
		return true
	})
}

// hasAncestor reports whether any node on the stack is of type N.
func hasAncestor[N ast.Node](stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(N); ok {
			return true
		}
	}
	return false
}

// waitGroupCall recognizes wg.Add / wg.Done / wg.Wait calls on a
// sync.WaitGroup and returns the method name plus the receiver's object
// when the receiver is a plain identifier (nil for fields and other
// compound receivers).
func waitGroupCall(pass *Pass, call *ast.CallExpr) (string, types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	name := sel.Sel.Name
	if name != "Add" && name != "Done" && name != "Wait" {
		return "", nil
	}
	if !isWaitGroup(pass.TypeOf(sel.X)) {
		return "", nil
	}
	var obj types.Object
	if id, ok := sel.X.(*ast.Ident); ok {
		obj = pass.Info.ObjectOf(id)
	}
	return name, obj
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
