package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ReportVersion identifies the machine-readable report format; bump it
// when Finding gains or changes fields so downstream tooling can tell.
const ReportVersion = 1

// A Finding is one diagnostic in machine-readable form. File is
// repo-relative and slash-separated so reports are comparable across
// checkouts and operating systems.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// A Report is the result of one hybridlint run. Its JSON encoding is
// also the baseline format: `hybridlint -json > baseline.json` followed
// by `hybridlint -baseline baseline.json` composes directly.
type Report struct {
	Version  int       `json:"version"`
	Findings []Finding `json:"findings"`
}

// NewReport converts diagnostics into a report, relativizing file paths
// against root (the directory the driver ran in). Paths that do not sit
// under root are kept as-is.
func NewReport(root string, diags []Diagnostic) *Report {
	r := &Report{Version: ReportVersion, Findings: []Finding{}}
	for _, d := range diags {
		r.Findings = append(r.Findings, Finding{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return r
}

func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(abs, file)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

// EncodeJSON writes the report as indented JSON. The encoding is
// deterministic: findings keep RunAnalyzer's position order and the
// struct field order is fixed.
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadBaseline reads a previously written -json report to use as a
// suppression baseline.
func LoadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("baseline %s: version %d, want %d (regenerate with hybridlint -json)", path, r.Version, ReportVersion)
	}
	return &r, nil
}

// FilterBaseline drops findings present in the baseline. Matching
// ignores line and column so unrelated edits that shift a known finding
// do not resurrect it; (file, analyzer, message) identifies it.
func (r *Report) FilterBaseline(baseline *Report) {
	if baseline == nil {
		return
	}
	type key struct{ file, analyzer, message string }
	known := make(map[key]bool, len(baseline.Findings))
	for _, f := range baseline.Findings {
		known[key{f.File, f.Analyzer, f.Message}] = true
	}
	kept := r.Findings[:0]
	for _, f := range r.Findings {
		if !known[key{f.File, f.Analyzer, f.Message}] {
			kept = append(kept, f)
		}
	}
	r.Findings = kept
}

// SARIF rendering: the minimal static-analysis interchange subset that
// GitHub code scanning ingests (SARIF 2.1.0 — tool driver with rules,
// results with ruleId/level/message/physical location).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// EncodeSARIF writes the report as SARIF 2.1.0. Every suite analyzer is
// listed as a rule (so a clean run still documents what was checked);
// each finding becomes an error-level result.
func (r *Report) EncodeSARIF(w io.Writer) error {
	driver := sarifDriver{Name: "hybridlint"}
	for _, a := range Analyzers() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, f := range r.Findings {
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ValidateSARIF structurally checks a SARIF document against the subset
// EncodeSARIF emits and upload endpoints require: version 2.1.0, at
// least one run with a named tool driver, every result carrying a
// ruleId declared in the driver's rules, a message, and at least one
// physical location with a URI and a positive start line.
func ValidateSARIF(data []byte) error {
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		return fmt.Errorf("sarif: %w", err)
	}
	if log.Version != "2.1.0" {
		return fmt.Errorf("sarif: version %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for ri, run := range log.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: run %d has no tool driver name", ri)
		}
		rules := make(map[string]bool, len(run.Tool.Driver.Rules))
		for i, rule := range run.Tool.Driver.Rules {
			if rule.ID == "" {
				return fmt.Errorf("sarif: run %d rule %d has no id", ri, i)
			}
			rules[rule.ID] = true
		}
		for i, res := range run.Results {
			if res.RuleID == "" || !rules[res.RuleID] {
				return fmt.Errorf("sarif: run %d result %d has undeclared ruleId %q", ri, i, res.RuleID)
			}
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: run %d result %d has an empty message", ri, i)
			}
			if len(res.Locations) == 0 {
				return fmt.Errorf("sarif: run %d result %d has no locations", ri, i)
			}
			for j, loc := range res.Locations {
				if loc.PhysicalLocation.ArtifactLocation.URI == "" {
					return fmt.Errorf("sarif: run %d result %d location %d has no artifact URI", ri, i, j)
				}
				if loc.PhysicalLocation.Region.StartLine < 1 {
					return fmt.Errorf("sarif: run %d result %d location %d has no start line", ri, i, j)
				}
			}
		}
	}
	return nil
}
