package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatEqAnalyzer flags == and != between floating-point operands in
// the order-notation packages (capacity, scaling, measure), where
// quantities are products of long float computations and exact equality
// silently depends on evaluation order and FMA contraction. Comparisons
// against an exact zero constant (sentinel/division guards) and the
// x != x NaN idiom are allowed.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "flag floating-point == / != comparisons; use a tolerance such as math.Abs(a-b) <= eps",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
				return true
			}
			if sameExpr(bin.X, bin.Y) { // x != x is the NaN check
				return true
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison: use a tolerance (e.g. math.Abs(a-b) <= eps) for order-notation quantities", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// sameExpr reports whether two expressions are textually identical
// identifier/selector chains (enough to recognize x != x and a.b != a.b).
func sameExpr(a, b ast.Expr) bool {
	sa, oka := exprPath(a)
	sb, okb := exprPath(b)
	return oka && okb && sa == sb
}

func exprPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		var sb strings.Builder
		sb.WriteString(base)
		sb.WriteByte('.')
		sb.WriteString(e.Sel.Name)
		return sb.String(), true
	case *ast.ParenExpr:
		return exprPath(e.X)
	}
	return "", false
}
