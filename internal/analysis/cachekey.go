package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// CacheKeyAnalyzer proves the cell-cache key covers the scenario space:
// every field of scenario.Scenario must either be projected into the
// cellScope struct (the canonical (scope, point, seed) cache key of
// internal/cellcache) or be named in the package's gridOnlyFields
// allowlist, which declares that editing the field must NOT invalidate
// previously computed cells (grid shape, presentation, fit requests).
//
// The point is forward-looking: when a future PR adds a Scenario field
// (delay accounting, shard specs, D2D knobs), compilation still
// succeeds — but the field's cache-invalidation semantics are
// undeclared, and a stale cellScope would silently serve cached cells
// computed under different physics. This analyzer fails the lint gate
// until the new field is classified one way or the other, turning
// cellcache soundness from a code-review convention into a
// compile-time invariant.
//
// The analyzer also rejects contradictions (a field both projected and
// allowlisted) and dead allowlist entries (gridOnlyFields naming a
// field Scenario no longer has).
var CacheKeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc:  "every scenario.Scenario field must be projected into cellScope or declared grid-only in gridOnlyFields, so cell-cache invalidation semantics are always explicit",
	Run:  runCacheKey,
}

func runCacheKey(pass *Pass) error {
	scenarioStruct := findStructType(pass.Files, "Scenario")
	if scenarioStruct == nil {
		return nil // not a scenario-shaped package
	}
	scopeStruct := findStructType(pass.Files, "cellScope")
	if scopeStruct == nil {
		pass.Reportf(scenarioStruct.Pos(), "package declares a Scenario struct but no cellScope projection: the cell cache has no key scope to check against")
		return nil
	}

	scopeFields := fieldNames(scopeStruct)
	gridOnly, gridOnlyPos := gridOnlyList(pass.Files)

	scenarioFields := make(map[string]bool)
	for _, field := range scenarioStruct.Fields.List {
		for _, name := range field.Names {
			scenarioFields[name.Name] = true
			inScope := scopeFields[name.Name]
			_, inGridOnly := gridOnly[name.Name]
			switch {
			case inScope && inGridOnly:
				pass.Reportf(name.Pos(), "scenario field %s is both projected into cellScope and declared grid-only in gridOnlyFields: the classifications contradict; pick one", name.Name)
			case !inScope && !inGridOnly:
				pass.Reportf(name.Pos(), "scenario field %s is neither projected into cellScope nor declared grid-only in gridOnlyFields: its cell-cache invalidation semantics are undeclared, so cached cells could silently survive a change to it; classify the field", name.Name)
			}
		}
	}

	for name, pos := range gridOnlyPos {
		if !scenarioFields[name] {
			pass.Reportf(pos, "gridOnlyFields names %q but Scenario has no such field: dead allowlist entry, delete it", name)
		}
	}
	return nil
}

// findStructType returns the struct type declared under the given name,
// or nil.
func findStructType(files []*ast.File, name string) *ast.StructType {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// fieldNames collects the declared field names of a struct type.
func fieldNames(st *ast.StructType) map[string]bool {
	names := make(map[string]bool)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			names[name.Name] = true
		}
	}
	return names
}

// gridOnlyList extracts the package-level gridOnlyFields string-slice
// literal: the explicit declaration that a Scenario field only shapes
// the grid or presentation and must not invalidate cached cells.
func gridOnlyList(files []*ast.File) (map[string]bool, map[string]token.Pos) {
	names := make(map[string]bool)
	positions := make(map[string]token.Pos)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != "gridOnlyFields" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range lit.Elts {
						bl, ok := elt.(*ast.BasicLit)
						if !ok {
							continue
						}
						if s, err := strconv.Unquote(bl.Value); err == nil {
							names[s] = true
							positions[s] = bl.Pos()
						}
					}
				}
			}
		}
	}
	return names, positions
}
