module hybridcap

go 1.22
