# Convenience entry points mirroring the CI gates. Each target is a
# plain go/gofmt one-liner, so everything here also works without make.

.PHONY: lint fmt test bench verify

# The compile-time invariant gate: formatting plus the hybridlint
# analyzer suite (same as CI's lint job, minus govulncheck which needs
# network access to the vuln DB).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "unformatted files:"; echo "$$out"; exit 1; fi
	go run ./cmd/hybridlint ./...

fmt:
	gofmt -w .

test:
	go build ./...
	go test ./...

bench:
	go test -bench=. -benchtime=1x -run '^$$' .

# Everything CI checks, in order.
verify: lint test
	go test -run TestSweepDeterminism -race ./internal/experiments/
