# Convenience entry points mirroring the CI gates. Each target is a
# plain go/gofmt one-liner, so everything here also works without make.

.PHONY: lint lint-json lint-sarif fmt test bench profile verify

# The compile-time invariant gate: formatting, go vet, plus the
# hybridlint analyzer suite (same as CI's lint job, minus govulncheck
# which needs network access to the vuln DB).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "unformatted files:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/hybridlint ./...

# Machine-readable lint reports (out/lint/). The JSON report doubles as
# the -baseline format; the SARIF file is what CI uploads to code
# scanning.
lint-json:
	mkdir -p out/lint
	go run ./cmd/hybridlint -json ./... > out/lint/hybridlint.json; \
		status=$$?; cat out/lint/hybridlint.json; exit $$status

lint-sarif:
	mkdir -p out/lint
	go run ./cmd/hybridlint -sarif ./... > out/lint/hybridlint.sarif; \
		status=$$?; echo "wrote out/lint/hybridlint.sarif"; exit $$status

fmt:
	gofmt -w .

test:
	go build ./...
	go test ./...

bench:
	go test -bench=. -benchtime=1x -run '^$$' .

# CPU + heap profiles of the Table-I sweep, the workload behind every
# hot-path optimization in internal/sim. Inspect with
# `go tool pprof out/pprof/cpu.out` (then `top`, `list <func>`, `web`).
profile:
	mkdir -p out/pprof
	go test -bench 'BenchmarkTable1$$' -benchtime=1x -run '^$$' \
		-cpuprofile out/pprof/cpu.out -memprofile out/pprof/mem.out \
		-o out/pprof/bench.test .
	@echo "profiles written to out/pprof/ (cpu.out, mem.out; binary bench.test)"

# Everything CI checks, in order.
verify: lint test
	go test -run TestSweepDeterminism -race ./internal/experiments/
